package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	semisort "repro"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/rec"
)

// sortResult is what one admitted request produced: the semisorted
// records (a view into the worker's shared output buffer, valid until
// Release), the sort stats, and how it failed if it did.
type sortResult struct {
	out      []semisort.Record
	stats    semisort.Stats
	err      error
	panicked bool
	panicVal any
}

// sumReducer is the /v1/reduce op=sum aggregation: per key, the uint64
// sum of record values (wrapping).
var sumReducer = semisort.Reducer{
	Fold:  func(acc, v uint64) uint64 { return acc + v },
	Merge: func(a, b uint64) uint64 { return a + b },
}

// runSort executes the semisort — or, when req carries a reduce op, the
// fused reduction — on wk's workspace, converting a handler panic
// (including the injected ServerHandlerPanic) into a result instead of
// letting it unwind into net/http — net/http would recover it too, but
// then the connection dies without a response and the worker would leak.
func (s *Server) runSort(ctx context.Context, wk *Worker, req *request) (res sortResult) {
	defer func() {
		if v := recover(); v != nil {
			res.panicked, res.panicVal = true, v
		}
	}()
	if fault.Should(fault.ServerHandlerPanic) {
		panic(fault.PanicValue)
	}
	cfg := s.cfg.Semisort
	cfg.Context = ctx
	cfg.MaxRetainedBytes = s.pool.workerBudget(req.tenant)
	// Shared-output calls: the output lives in the workspace (zero
	// allocations in steady state) and is written to the response before
	// Release; the retained-bytes budget covers it like any other scratch
	// buffer.
	var (
		out []semisort.Record
		st  semisort.Stats
		err error
	)
	switch req.op {
	case "":
		out, st, err = wk.sorter.SortConfigShared(req.recs, &cfg)
	case "count":
		out, st, err = wk.sorter.HistogramConfigShared(req.recs, &cfg)
	case "sum":
		out, st, err = wk.sorter.ReduceConfigShared(req.recs, sumReducer, &cfg)
	default:
		// handleReduce validates the op before admission; reaching here is
		// a programming error, reported rather than panicking.
		err = fmt.Errorf("unknown reduce op %q", req.op)
	}
	res.out, res.stats, res.err = out, st, err
	return res
}

// request is the per-request state threaded through the common pipeline
// shared by the record-out and JSON-out endpoints.
type request struct {
	span    obsv.RequestSpan
	tenant  string
	recs    []semisort.Record
	started time.Time
	// op selects the worker-side operation: "" for a plain semisort,
	// "count" or "sum" for the /v1/reduce aggregations.
	op string
}

// accept runs the shared front half of every sort endpoint: fault check,
// tenant/deadline extraction, body decode. It returns a nil request after
// writing an error response itself.
func (s *Server) accept(w http.ResponseWriter, r *http.Request) (*request, context.Context, context.CancelFunc) {
	req := &request{started: time.Now()}
	req.span = obsv.RequestSpan{
		Seq:   s.seq.Add(1),
		Start: req.started,
		Path:  r.URL.Path,
	}
	if s.draining.Load() {
		s.finish(w, req, http.StatusServiceUnavailable, obsv.ReqShed, "draining")
		return nil, nil, nil
	}
	if fault.Should(fault.ServerAccept) {
		s.finish(w, req, http.StatusInternalServerError, obsv.ReqError, "injected accept fault")
		return nil, nil, nil
	}
	req.tenant = r.Header.Get("X-Semisort-Tenant")
	if req.tenant == "" {
		req.tenant = r.URL.Query().Get("tenant")
	}
	req.span.Tenant = req.tenant

	timeout := s.cfg.RequestTimeout
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v <= 0 {
			s.finish(w, req, http.StatusBadRequest, obsv.ReqBadInput, "bad timeout_ms")
			return nil, nil, nil
		}
		if d := time.Duration(v) * time.Millisecond; d < timeout {
			timeout = d
		}
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.finish(w, req, status, obsv.ReqBadInput, fmt.Sprintf("read body: %v", err))
		return nil, nil, nil
	}
	req.span.BytesIn = int64(len(body))
	req.recs, err = rec.DecodeRecords(nil, body)
	if err != nil {
		s.finish(w, req, http.StatusBadRequest, obsv.ReqBadInput, err.Error())
		return nil, nil, nil
	}
	req.span.Records = len(req.recs)

	// The request context combines the server base context (drain), the
	// client connection (disconnect) and the per-request deadline.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return req, ctx, cancel
}

// sortThrough runs admission + sort for req and hands the result to emit
// while the worker is still held (the output aliases its workspace).
// emit must write the success response; sortThrough writes every error
// response itself.
func (s *Server) sortThrough(w http.ResponseWriter, req *request, ctx context.Context,
	emit func(res sortResult) (bytesOut int64, err error)) {

	queueStart := time.Now()
	wk, err := s.pool.Acquire(ctx)
	req.span.QueueWaitUS = time.Since(queueStart).Microseconds()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.999)))
			s.finish(w, req, http.StatusServiceUnavailable, obsv.ReqShed, "admission queue full")
		case s.baseCtx.Err() != nil:
			s.pool.Gauges().Drains.Add(1)
			s.finish(w, req, http.StatusServiceUnavailable, obsv.ReqCanceled, "server draining")
		case errors.Is(err, context.DeadlineExceeded):
			s.finish(w, req, http.StatusGatewayTimeout, obsv.ReqTimeout, "deadline exceeded in queue")
		default:
			s.finish(w, req, 0, obsv.ReqCanceled, "client gone while queued")
		}
		return
	}

	sortStart := time.Now()
	res := s.runSort(ctx, wk, req)
	req.span.SortUS = time.Since(sortStart).Microseconds()

	if res.panicked {
		// The workspace was abandoned mid-sort; discard its buffers so a
		// possibly half-written scratch state never serves another
		// request, and recycle the slot — the pool is not poisoned.
		s.pool.Gauges().Panics.Add(1)
		s.pool.Release(wk, req.tenant, true)
		s.finish(w, req, http.StatusInternalServerError, obsv.ReqPanic,
			fmt.Sprintf("handler panic: %v", res.panicVal))
		return
	}

	if res.err != nil {
		s.pool.Release(wk, req.tenant, false)
		switch {
		case s.baseCtx.Err() != nil:
			s.pool.Gauges().Drains.Add(1)
			s.finish(w, req, http.StatusServiceUnavailable, obsv.ReqCanceled, "canceled by drain")
		case errors.Is(res.err, context.DeadlineExceeded):
			s.pool.Gauges().Timeouts.Add(1)
			s.finish(w, req, http.StatusGatewayTimeout, obsv.ReqTimeout, "deadline exceeded")
		case errors.Is(res.err, context.Canceled):
			s.pool.Gauges().Timeouts.Add(1)
			s.finish(w, req, 0, obsv.ReqCanceled, "client disconnected")
		default:
			// A real sort failure (e.g. overflow exhaustion with the
			// fallback disabled): clean 500, workspace already recycled.
			s.finish(w, req, http.StatusInternalServerError, obsv.ReqError, res.err.Error())
		}
		return
	}

	req.span.Attempts = res.stats.Attempts
	req.span.FallbackUsed = res.stats.FallbackUsed
	n, werr := emit(res)
	req.span.BytesOut = n
	s.pool.Release(wk, req.tenant, false)
	if werr != nil {
		// The sort succeeded but the client went away mid-response; log
		// it — there is nobody left to send a status to.
		req.span.Status = http.StatusOK
		req.span.Outcome = obsv.ReqCanceled
		req.span.TotalUS = time.Since(req.started).Microseconds()
		s.trace(req.span)
		return
	}
	req.span.Status = http.StatusOK
	req.span.Outcome = obsv.ReqOK
	req.span.TotalUS = time.Since(req.started).Microseconds()
	s.trace(req.span)
}

// finish writes an error (or shed) response and logs the span. A zero
// status means the client is already gone and nothing is written.
func (s *Server) finish(w http.ResponseWriter, req *request, status int, outcome, msg string) {
	if status != 0 {
		http.Error(w, msg, status)
	}
	req.span.Status = status
	req.span.Outcome = outcome
	req.span.TotalUS = time.Since(req.started).Microseconds()
	s.trace(req.span)
}

// emitRecords streams res.out as raw 16-byte records — the success
// response of the record-out endpoints.
func emitRecords(w http.ResponseWriter, res sortResult) (int64, error) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(res.out)*rec.RecordSize))
	var written int64
	const chunk = 4096
	buf := make([]byte, 0, chunk*rec.RecordSize)
	out := res.out
	for len(out) > 0 {
		n := min(len(out), chunk)
		buf = rec.AppendRecords(buf[:0], out[:n])
		m, err := w.Write(buf)
		written += int64(m)
		if err != nil {
			return written, err
		}
		out = out[n:]
	}
	return written, nil
}

// handleSemisort is POST /v1/semisort: raw 16-byte records in, the same
// records semisorted out.
func (s *Server) handleSemisort(w http.ResponseWriter, r *http.Request) {
	req, ctx, cancel := s.accept(w, r)
	if req == nil {
		return
	}
	defer cancel()
	s.sortThrough(w, req, ctx, func(res sortResult) (int64, error) {
		return emitRecords(w, res)
	})
}

// handleReduce is POST /v1/reduce: raw records in, one record per
// distinct key out, aggregated fused on the worker (docs/AGGREGATION.md).
// The op query parameter selects the aggregation: "count" (the default;
// Value = the key's multiplicity) or "sum" (Value = the wrapping uint64
// sum of the key's record values). Any other op is a 400.
func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	req, ctx, cancel := s.accept(w, r)
	if req == nil {
		return
	}
	defer cancel()
	switch op := r.URL.Query().Get("op"); op {
	case "", "count":
		req.op = "count"
	case "sum":
		req.op = "sum"
	default:
		s.finish(w, req, http.StatusBadRequest, obsv.ReqBadInput, fmt.Sprintf("unknown op %q", op))
		return
	}
	s.sortThrough(w, req, ctx, func(res sortResult) (int64, error) {
		return emitRecords(w, res)
	})
}

// groupSummary is the POST /v1/groupby response shape.
type groupSummary struct {
	Records   int    `json:"records"`
	Groups    int    `json:"groups"`
	MaxGroup  int    `json:"max_group"`
	Attempts  int    `json:"attempts"`
	Fallback  bool   `json:"fallback,omitempty"`
	HeavyKeys int    `json:"heavy_keys"`
	Tenant    string `json:"tenant,omitempty"`
}

// handleGroupBy is POST /v1/groupby: raw records in, a JSON group-by
// summary out (group count, largest group, recovery footprint) — the
// collect-style endpoint for clients that want aggregates, not bytes.
func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	req, ctx, cancel := s.accept(w, r)
	if req == nil {
		return
	}
	defer cancel()
	s.sortThrough(w, req, ctx, func(res sortResult) (int64, error) {
		sum := groupSummary{
			Records:   len(res.out),
			Attempts:  res.stats.Attempts,
			Fallback:  res.stats.FallbackUsed,
			HeavyKeys: res.stats.HeavyKeys,
			Tenant:    req.tenant,
		}
		rec.Runs(res.out, func(start, end int) {
			sum.Groups++
			if end-start > sum.MaxGroup {
				sum.MaxGroup = end - start
			}
		})
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(sum)
		n, err := w.Write(append(b, '\n'))
		return int64(n), err
	})
}
