package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	semisort "repro"
	"repro/internal/distgen"
	"repro/internal/rec"
)

func encodeRecords(recs []semisort.Record) []byte {
	return rec.AppendRecords(nil, recs)
}

func genRecords(n int, seed uint64) []semisort.Record {
	return distgen.Generate(0, n, distgen.Spec{Kind: distgen.Zipfian, Param: 1e4}, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.log.Close()
	})
	return s, ts
}

func postRecords(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSemisortEndpointRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	in := genRecords(10_000, 7)

	resp := postRecords(t, ts.URL+"/v1/semisort", encodeRecords(in), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rec.DecodeRecords(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SamePermutation(in, out) {
		t.Fatal("response is not a permutation of the input")
	}
	if !rec.IsSemisorted(out) {
		t.Fatal("response is not semisorted")
	}
}

func TestGroupByEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	// 100 records, 10 distinct keys, 10 each.
	in := make([]semisort.Record, 100)
	for i := range in {
		in[i] = semisort.Record{Key: uint64(i % 10), Value: uint64(i)}
	}
	resp := postRecords(t, ts.URL+"/v1/groupby", encodeRecords(in),
		map[string]string{"X-Semisort-Tenant": "t9"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sum groupSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Records != 100 || sum.Groups != 10 || sum.MaxGroup != 10 || sum.Tenant != "t9" {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestReduceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	// 100 records, 10 distinct keys, 10 each, values = input index.
	in := make([]semisort.Record, 100)
	wantSum := map[uint64]uint64{}
	for i := range in {
		in[i] = semisort.Record{Key: uint64(i % 10), Value: uint64(i)}
		wantSum[uint64(i%10)] += uint64(i)
	}

	decode := func(resp *http.Response) map[uint64]uint64 {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out, err := rec.DecodeRecords(nil, body)
		if err != nil {
			t.Fatal(err)
		}
		m := map[uint64]uint64{}
		for _, r := range out {
			if _, dup := m[r.Key]; dup {
				t.Fatalf("key %d appears in two groups", r.Key)
			}
			m[r.Key] = r.Value
		}
		return m
	}

	// Default op is count: one record per key, Value = multiplicity.
	counts := decode(postRecords(t, ts.URL+"/v1/reduce", encodeRecords(in), nil))
	if len(counts) != 10 {
		t.Fatalf("count groups = %d, want 10", len(counts))
	}
	for k, c := range counts {
		if c != 10 {
			t.Fatalf("count[%d] = %d, want 10", k, c)
		}
	}

	// op=sum: Value = uint64 sum of the key's record values.
	sums := decode(postRecords(t, ts.URL+"/v1/reduce?op=sum", encodeRecords(in), nil))
	if len(sums) != 10 {
		t.Fatalf("sum groups = %d, want 10", len(sums))
	}
	for k, want := range wantSum {
		if sums[k] != want {
			t.Fatalf("sum[%d] = %d, want %d", k, sums[k], want)
		}
	}

	// An unknown op is rejected before admission.
	resp := postRecords(t, ts.URL+"/v1/reduce?op=median", encodeRecords(in), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op status = %d, want 400", resp.StatusCode)
	}
}

func TestBadInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, MaxRequestBytes: 1024})

	resp := postRecords(t, ts.URL+"/v1/semisort", []byte("not-16-byte-aligned"), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misaligned body: status %d, want 400", resp.StatusCode)
	}

	resp = postRecords(t, ts.URL+"/v1/semisort", make([]byte, 4096), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	resp = postRecords(t, ts.URL+"/v1/semisort?timeout_ms=bogus", nil, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d, want 400", resp.StatusCode)
	}
}

func TestRequestDeadlineCancelsSort(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	in := genRecords(500_000, 3)
	// 1 ms is far below the sort time for 500k records; the deadline
	// must cut the sort mid-phase and yield 504.
	resp := postRecords(t, ts.URL+"/v1/semisort?timeout_ms=1", encodeRecords(in), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, b)
	}
}

func TestClientDisconnectCancelsRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1})
	in := genRecords(500_000, 4)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/semisort",
		bytes.NewReader(encodeRecords(in)))
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Skip("request finished before the cancel landed")
	}
	// The handler must notice and release the worker; the pool must be
	// fully idle again shortly after.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.Gauges().Active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker still active after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2, DefaultTenantBudget: 1 << 20})
	in := genRecords(50_000, 5)
	for i := 0; i < 3; i++ {
		resp := postRecords(t, ts.URL+"/v1/semisort?tenant=acme", encodeRecords(in), nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pool.Admissions != 3 {
		t.Fatalf("Admissions = %d, want 3", st.Pool.Admissions)
	}
	ten, ok := st.Tenants["acme"]
	if !ok {
		t.Fatalf("tenant acme missing from stats: %+v", st.Tenants)
	}
	if ten.BudgetBytes != 1<<20 {
		t.Fatalf("budget = %d, want %d", ten.BudgetBytes, 1<<20)
	}
	if ten.RetainedBytes <= 0 || ten.RetainedBytes > ten.BudgetBytes {
		t.Fatalf("retained %d outside (0, budget=%d]", ten.RetainedBytes, ten.BudgetBytes)
	}
	if st.Requests != 3 {
		t.Fatalf("Requests = %d, want 3", st.Requests)
	}
}

func TestHealthAndDrainingFlag(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1, DrainTimeout: time.Second})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	// New sort requests are shed while draining.
	resp = postRecords(t, ts.URL+"/v1/semisort", encodeRecords(genRecords(100, 1)), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sort while draining = %d, want 503", resp.StatusCode)
	}
}

// TestGracefulShutdownDrainsInFlight runs the server on a real listener,
// holds several sorts in flight, triggers Shutdown concurrently, and
// verifies every in-flight request still got a well-formed response.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{PoolSize: 2, MaxQueue: 16, DrainTimeout: 10 * time.Second})
	ln := newLocalListener(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	in := encodeRecords(genRecords(200_000, 6))
	const flights = 6
	var wg sync.WaitGroup
	statuses := make([]int, flights)
	errs := make([]error, flights)
	for i := 0; i < flights; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/semisort", "application/octet-stream", bytes.NewReader(in))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Let the requests reach the server, then drain.
	time.Sleep(20 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	for i := 0; i < flights; i++ {
		if errs[i] != nil {
			t.Errorf("request %d dropped without a response: %v", i, errs[i])
		} else if statuses[i] != http.StatusOK && statuses[i] != http.StatusServiceUnavailable {
			t.Errorf("request %d: status %d, want 200 or 503", i, statuses[i])
		}
	}
	if g := s.pool.Gauges().Active.Load(); g != 0 {
		t.Fatalf("Active = %d after drain, want 0", g)
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}
