package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

// RingLog is a bounded MPSC access/error log: request handlers (many
// producers) push RequestSpan entries without ever blocking, and one
// consumer goroutine formats and writes them to an io.Writer. When the
// consumer falls behind and the ring fills, producers drop entries and
// count the drops instead of stalling the request path — a resident
// server must never let a slow log disk (or a blocked stderr pipe)
// back-pressure request latency.
//
// The ring is a Vyukov-style bounded queue restricted to one consumer:
// each slot carries a sequence number; a producer claims slot positions
// with a CAS on the tail cursor and publishes by storing seq = pos+1; the
// consumer reads slot head when its seq says the entry is published and
// recycles it by storing seq = head+capacity.
type RingLog struct {
	slots []ringSlot
	mask  int64
	tail  atomic.Int64 // next position to claim (producers)
	head  int64        // next position to consume (consumer only)

	drops  atomic.Int64
	wake   chan struct{}
	quit   chan struct{}
	done   chan struct{}
	w      io.Writer
	errCnt atomic.Int64

	closeOnce sync.Once
}

type ringSlot struct {
	seq  atomic.Int64
	span obsv.RequestSpan
}

// NewRingLog returns a running ring log of the given capacity (rounded up
// to a power of two, minimum 64) writing formatted entries to w. Close
// flushes and stops the consumer. A nil w discards entries after counting
// them, which keeps the producer path identical in benchmarks.
func NewRingLog(capacity int, w io.Writer) *RingLog {
	c := int64(64)
	for c < int64(capacity) {
		c <<= 1
	}
	l := &RingLog{
		slots: make([]ringSlot, c),
		mask:  c - 1,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		w:     w,
	}
	for i := range l.slots {
		l.slots[i].seq.Store(int64(i))
	}
	go l.consume()
	return l
}

// Push publishes one entry. It never blocks: if the ring is full the
// entry is dropped and counted. Safe for concurrent use.
func (l *RingLog) Push(span obsv.RequestSpan) {
	for {
		pos := l.tail.Load()
		slot := &l.slots[pos&l.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if !l.tail.CompareAndSwap(pos, pos+1) {
				continue // lost the claim race; retry
			}
			slot.span = span
			slot.seq.Store(pos + 1)
			select {
			case l.wake <- struct{}{}:
			default:
			}
			return
		case seq < pos:
			// The consumer has not recycled this slot: ring full.
			l.drops.Add(1)
			return
		default:
			// Another producer advanced tail between our loads; retry.
		}
	}
}

// Drops reports how many entries were dropped because the ring was full.
func (l *RingLog) Drops() int64 { return l.drops.Load() }

// WriteErrors reports how many formatted entries failed to write.
func (l *RingLog) WriteErrors() int64 { return l.errCnt.Load() }

// Close stops the consumer after draining every published entry. It is
// idempotent and safe to call concurrently with Push (entries pushed
// after Close may be dropped).
func (l *RingLog) Close() {
	l.closeOnce.Do(func() { close(l.quit) })
	<-l.done
}

func (l *RingLog) consume() {
	defer close(l.done)
	for {
		if l.drain() {
			continue // drained something; check again before sleeping
		}
		select {
		case <-l.wake:
		case <-l.quit:
			l.drain()
			return
		}
	}
}

// drain consumes every published entry, returning whether any was seen.
func (l *RingLog) drain() bool {
	any := false
	for {
		slot := &l.slots[l.head&l.mask]
		if slot.seq.Load() != l.head+1 {
			return any
		}
		span := slot.span
		slot.seq.Store(l.head + int64(len(l.slots)))
		l.head++
		any = true
		l.emit(span)
	}
}

// emit formats one access-log line:
//
//	seq=12 path=/v1/semisort tenant=t0 status=200 outcome=ok records=4096 in=65536 out=65536 queue_us=12 sort_us=833 total_us=912
func (l *RingLog) emit(s obsv.RequestSpan) {
	if l.w == nil {
		return
	}
	_, err := fmt.Fprintf(l.w,
		"seq=%d path=%s tenant=%s status=%d outcome=%s records=%d in=%d out=%d queue_us=%d sort_us=%d total_us=%d\n",
		s.Seq, s.Path, s.Tenant, s.Status, s.Outcome, s.Records,
		s.BytesIn, s.BytesOut, s.QueueWaitUS, s.SortUS, s.TotalUS)
	if err != nil {
		l.errCnt.Add(1)
	}
}
