package server

import (
	"context"
	"errors"
	"testing"
	"time"

	semisort "repro"
	"repro/internal/distgen"
)

func testPool(size, queue int, budget int64) *Pool {
	return newPool(poolConfig{
		Size:          size,
		MaxQueue:      queue,
		DefaultBudget: budget,
	})
}

func TestPoolAcquireRelease(t *testing.T) {
	p := testPool(2, 2, 0)
	ctx := context.Background()
	w1, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g := p.Gauges().Active.Load(); g != 2 {
		t.Fatalf("Active = %d, want 2", g)
	}
	p.Release(w1, "a", false)
	p.Release(w2, "a", false)
	if g := p.Gauges().Active.Load(); g != 0 {
		t.Fatalf("Active = %d, want 0", g)
	}
	if g := p.Gauges().Admissions.Load(); g != 2 {
		t.Fatalf("Admissions = %d, want 2", g)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := testPool(1, 1, 0)
	ctx := context.Background()
	w, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter is allowed; it parks on the worker channel.
	waited := make(chan error, 1)
	go func() {
		wq, err := p.Acquire(ctx)
		if err == nil {
			p.Release(wq, "", false)
		}
		waited <- err
	}()
	// Wait until the waiter is queued.
	for p.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The second waiter must be shed immediately.
	if _, err := p.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if g := p.Gauges().Rejections.Load(); g != 1 {
		t.Fatalf("Rejections = %d, want 1", g)
	}
	p.Release(w, "", false)
	if err := <-waited; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

func TestPoolAcquireHonorsContext(t *testing.T) {
	p := testPool(1, 4, 0)
	w, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(w, "", false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if g := p.Gauges().Timeouts.Load(); g != 1 {
		t.Fatalf("Timeouts = %d, want 1", g)
	}
}

func TestPoolTenantBudgetShare(t *testing.T) {
	const size = 2
	const budget = 1 << 20 // 1 MiB across the pool
	p := testPool(size, 2, budget)

	recs := distgen.Generate(0, 200_000, distgen.Spec{Kind: distgen.Uniform, Param: 1e6}, 1)
	for i := 0; i < 2*size; i++ {
		w, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cfg := semisort.Config{MaxRetainedBytes: p.workerBudget("hot")}
		if _, _, err := w.sorter.SortConfigShared(recs, &cfg); err != nil {
			t.Fatal(err)
		}
		p.Release(w, "hot", false)
	}

	got := p.TenantRetained()["hot"]
	if got > budget {
		t.Fatalf("tenant retains %d bytes, budget %d", got, budget)
	}
	if got == 0 {
		t.Fatal("expected nonzero retention under a 1 MiB budget")
	}
	if rb := p.Gauges().RetainedBytes.Load(); rb != got {
		t.Fatalf("RetainedBytes gauge %d != tenant attribution %d (single tenant)", rb, got)
	}
}

func TestPoolDiscardDropsRetention(t *testing.T) {
	p := testPool(1, 1, 0)
	recs := distgen.Generate(0, 50_000, distgen.Spec{Kind: distgen.Uniform, Param: 1e6}, 1)

	w, _ := p.Acquire(context.Background())
	if _, err := w.sorter.Sort(recs); err != nil {
		t.Fatal(err)
	}
	p.Release(w, "t", false)
	if p.Gauges().RetainedBytes.Load() == 0 {
		t.Fatal("expected retained scratch after an uncapped sort")
	}

	w, _ = p.Acquire(context.Background())
	p.Release(w, "t", true) // discard
	if g := p.Gauges().RetainedBytes.Load(); g != 0 {
		t.Fatalf("RetainedBytes = %d after discard, want 0", g)
	}
	if g := p.Gauges().Discards.Load(); g != 1 {
		t.Fatalf("Discards = %d, want 1", g)
	}
	// The discarded worker is still serviceable.
	w, _ = p.Acquire(context.Background())
	out, err := w.sorter.Sort(recs)
	if err != nil || len(out) != len(recs) {
		t.Fatalf("sort after discard: len=%d err=%v", len(out), err)
	}
	p.Release(w, "t", false)
}
