package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	semisort "repro"
	"repro/internal/fault"
	"repro/internal/obsv"
)

// ErrQueueFull is returned by Pool.Acquire when the bounded wait queue is
// already at capacity; handlers translate it to 503 + Retry-After.
var ErrQueueFull = errors.New("server: admission queue full")

// A Pool is a fixed set of warm semisort workspaces with admission
// control. At most Size requests hold a workspace at once; at most
// MaxQueue more may wait. Anything beyond that is shed immediately
// (ErrQueueFull) rather than queued without bound — under overload the
// pool's latency stays flat and the pressure becomes visible to clients
// as 503s, not as an ever-growing queue.
//
// Per-tenant memory budgets: each workspace a tenant touches runs its
// sort with Config.MaxRetainedBytes = budget/Size, so after any request
// the workspace retains at most a 1/Size share of the tenant's budget.
// Since a tenant's retained scratch lives only on workspaces that served
// it last, its total pinned memory never exceeds its budget no matter
// how hot it runs or how the scheduler spreads it over the pool.
type Pool struct {
	size     int
	maxQueue int64
	workers  chan *Worker
	waiters  atomic.Int64
	gauges   *obsv.PoolGauges

	defaultBudget int64
	budgets       map[string]int64

	// mu guards the idle-retention attribution: which tenant each idle
	// worker's scratch belongs to, and the per-tenant totals.
	mu       sync.Mutex
	byTenant map[string]int64
}

// A Worker is one pool slot: a warm Sorter plus release bookkeeping.
// Between Acquire and Release it is owned exclusively by one request.
type Worker struct {
	id     int
	sorter *semisort.Sorter
	// retained is this worker's sorter scratch as of its last release,
	// mirrored into the pool's RetainedBytes gauge and the per-tenant
	// attribution (guarded by Pool.mu).
	retained   int64
	lastTenant string
}

// Sorter returns the workspace-owning sorter. Valid only between
// Acquire and Release.
func (w *Worker) Sorter() *semisort.Sorter { return w.sorter }

type poolConfig struct {
	Size          int
	MaxQueue      int
	BaseConfig    semisort.Config
	DefaultBudget int64
	Budgets       map[string]int64
	Gauges        *obsv.PoolGauges
}

func newPool(pc poolConfig) *Pool {
	p := &Pool{
		size:          pc.Size,
		maxQueue:      int64(pc.MaxQueue),
		workers:       make(chan *Worker, pc.Size),
		gauges:        pc.Gauges,
		defaultBudget: pc.DefaultBudget,
		budgets:       pc.Budgets,
		byTenant:      make(map[string]int64),
	}
	if p.gauges == nil {
		p.gauges = &obsv.PoolGauges{}
	}
	for i := 0; i < pc.Size; i++ {
		cfg := pc.BaseConfig
		p.workers <- &Worker{id: i, sorter: semisort.NewSorter(&cfg)}
	}
	return p
}

// Size returns the number of workspaces in the pool.
func (p *Pool) Size() int { return p.size }

// Gauges returns the pool's live counters.
func (p *Pool) Gauges() *obsv.PoolGauges { return p.gauges }

// TenantBudget returns the retained-bytes budget for tenant (the
// configured per-tenant override, else the default budget; 0 = no cap).
func (p *Pool) TenantBudget(tenant string) int64 {
	if b, ok := p.budgets[tenant]; ok {
		return b
	}
	return p.defaultBudget
}

// workerBudget is the per-workspace MaxRetainedBytes share enforcing the
// tenant's pool-wide budget.
func (p *Pool) workerBudget(tenant string) int64 {
	b := p.TenantBudget(tenant)
	if b <= 0 {
		return 0
	}
	share := b / int64(p.size)
	if share < 1 {
		share = 1 // a zero share would mean "retain everything"
	}
	return share
}

// Acquire checks a worker out of the pool for the current request,
// waiting until one frees up, ctx is done, or the wait queue is full.
// The admission fault point lets tests force the shed path
// deterministically.
func (p *Pool) Acquire(ctx context.Context) (*Worker, error) {
	if fault.Should(fault.ServerAdmission) {
		p.gauges.Rejections.Add(1)
		return nil, ErrQueueFull
	}
	// Fast path: a worker is idle right now.
	select {
	case w := <-p.workers:
		p.admit(w)
		return w, nil
	default:
	}
	// Slow path: join the bounded wait queue.
	if p.waiters.Add(1) > p.maxQueue {
		p.waiters.Add(-1)
		p.gauges.Rejections.Add(1)
		return nil, ErrQueueFull
	}
	p.gauges.QueueDepth.Store(p.waiters.Load())
	defer func() {
		p.waiters.Add(-1)
		p.gauges.QueueDepth.Store(p.waiters.Load())
	}()
	select {
	case w := <-p.workers:
		p.admit(w)
		return w, nil
	case <-ctx.Done():
		p.gauges.Timeouts.Add(1)
		return nil, ctx.Err()
	}
}

func (p *Pool) admit(w *Worker) {
	p.gauges.Admissions.Add(1)
	p.gauges.Active.Add(1)
	// The worker's idle retention is about to be churned by a new sort;
	// take it off the gauges until Release re-measures it.
	p.mu.Lock()
	p.byTenant[w.lastTenant] -= w.retained
	if p.byTenant[w.lastTenant] <= 0 {
		delete(p.byTenant, w.lastTenant)
	}
	p.mu.Unlock()
	p.gauges.RetainedBytes.Add(-w.retained)
	w.retained = 0
}

// Release returns w to the pool. If discard is set (the handler panicked,
// or the caller otherwise suspects the workspace), every retained buffer
// is dropped first, so a damaged or bloated workspace re-enters the pool
// at its zero footprint — the pool itself is never poisoned. tenant is
// the tenant the request ran for; the sort's MaxRetainedBytes share
// already enforced its budget, and the residual retention is attributed
// to it until the next request on this worker.
func (p *Pool) Release(w *Worker, tenant string, discard bool) {
	if discard {
		w.sorter.Release()
		p.gauges.Discards.Add(1)
	}
	w.lastTenant = tenant
	w.retained = w.sorter.RetainedBytes()
	p.mu.Lock()
	p.byTenant[tenant] += w.retained
	p.mu.Unlock()
	p.gauges.RetainedBytes.Add(w.retained)
	p.gauges.Active.Add(-1)
	p.workers <- w
}

// TenantRetained returns a copy of the idle scratch currently attributed
// to each tenant. Workers checked out at snapshot time are not counted
// (their retention is in flux); the per-worker budget shares still bound
// every tenant's total at its budget.
func (p *Pool) TenantRetained() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.byTenant))
	for t, b := range p.byTenant {
		if b > 0 {
			out[t] = b
		}
	}
	return out
}
