package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestDrainOverrunCancelsStragglers pins the drain ladder's second rung:
// a request that cannot finish within DrainTimeout is canceled
// cooperatively (via the server base context feeding Config.Context) and
// still receives a response — 503, not a dropped connection.
func TestDrainOverrunCancelsStragglers(t *testing.T) {
	s := New(Config{PoolSize: 1, DrainTimeout: 50 * time.Millisecond})
	ln := newLocalListener(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	// Block the sort at its first phase boundary until the drain has
	// overrun and canceled the base context.
	entered := make(chan struct{})
	release := make(chan struct{})
	inj := fault.New(1).Arm(fault.PhaseBoundary, 0, 1)
	inj.OnFire(fault.PhaseBoundary, func() {
		close(entered)
		<-release
	})
	fault.Enable(inj)
	defer fault.Disable()

	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/semisort",
			"application/octet-stream", bytes.NewReader(encodeRecords(genRecords(50_000, 9))))
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	<-entered // the sort is in flight and stuck
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Once the drain deadline overruns, Shutdown cancels the base
	// context; only then unblock the sort so it observes the cancel at
	// its phase gate.
	select {
	case <-s.baseCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("drain never canceled the base context")
	}
	close(release)

	select {
	case err := <-errCh:
		t.Fatalf("in-flight request dropped without a response: %v", err)
	case resp := <-respCh:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 (canceled by drain)", resp.StatusCode)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request never completed")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	if g := s.pool.Gauges().Drains.Load(); g != 1 {
		t.Fatalf("Drains = %d, want 1", g)
	}
	if g := s.pool.Gauges().Active.Load(); g != 0 {
		t.Fatalf("Active = %d, want 0", g)
	}
}
