package server

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obsv"
)

func TestRingLogDeliversAllWhenNotFull(t *testing.T) {
	var buf syncBuffer
	l := NewRingLog(1024, &buf)
	const n = 500
	for i := 0; i < n; i++ {
		l.Push(obsv.RequestSpan{Seq: int64(i), Path: "/v1/semisort", Status: 200, Outcome: obsv.ReqOK})
	}
	l.Close()
	if got := strings.Count(buf.String(), "\n"); got != n {
		t.Fatalf("got %d log lines, want %d", got, n)
	}
	if l.Drops() != 0 {
		t.Fatalf("Drops = %d, want 0", l.Drops())
	}
	if !strings.Contains(buf.String(), "path=/v1/semisort") {
		t.Fatalf("log line format unexpected:\n%s", buf.String()[:200])
	}
}

func TestRingLogNeverBlocksAndCountsDrops(t *testing.T) {
	// No consumer progress: blockWriter stalls the consumer on its first
	// write, so producers must drop once the ring fills — but never block.
	bw := &blockWriter{release: make(chan struct{})}
	l := NewRingLog(64, bw)
	const producers, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Push(obsv.RequestSpan{Seq: int64(p*per + i)})
			}
		}(p)
	}
	wg.Wait() // would deadlock here if Push ever blocked
	close(bw.release)
	l.Close()
	delivered := bw.Count()
	if delivered+int(l.Drops()) != producers*per {
		t.Fatalf("delivered %d + dropped %d != pushed %d",
			delivered, l.Drops(), producers*per)
	}
	if l.Drops() == 0 {
		t.Fatal("expected drops with a stalled consumer and a 64-slot ring")
	}
}

func TestRingLogCloseIsIdempotent(t *testing.T) {
	l := NewRingLog(64, nil)
	l.Push(obsv.RequestSpan{Seq: 1})
	l.Close()
	l.Close()
}

// syncBuffer is a mutex-guarded bytes.Buffer (the consumer goroutine
// writes; the test reads after Close).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// blockWriter blocks its first Write until released, then counts lines.
type blockWriter struct {
	release chan struct{}
	mu      sync.Mutex
	n       int
}

func (w *blockWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	w.n += strings.Count(string(p), "\n")
	w.mu.Unlock()
	return len(p), nil
}

func (w *blockWriter) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}
