package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	semisort "repro"
	"repro/internal/fault"
	"repro/internal/rec"
)

// The fault tests prove the acceptance property: an injected accept
// failure, forced admission rejection, handler panic, or unrecoverable
// bucket overflow each yield a clean error response, and the pool keeps
// serving afterwards — no poisoned workspace, no stuck slot.

func TestInjectedAcceptFault(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1})
	fault.Enable(fault.New(1).Arm(fault.ServerAccept, 0, 1))
	defer fault.Disable()

	in := encodeRecords(genRecords(1000, 1))
	resp := postRecords(t, ts.URL+"/v1/semisort", in, nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "injected accept fault") {
		t.Fatalf("body %q", body)
	}
	// Next request (occurrence 1, not armed) succeeds.
	resp = postRecords(t, ts.URL+"/v1/semisort", in, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after fault: status %d, want 200", resp.StatusCode)
	}
}

func TestInjectedAdmissionFault(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1, RetryAfter: 2 * time.Second})
	fault.Enable(fault.New(1).Arm(fault.ServerAdmission, 0, 1))
	defer fault.Disable()

	in := encodeRecords(genRecords(1000, 1))
	resp := postRecords(t, ts.URL+"/v1/semisort", in, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if g := s.pool.Gauges().Rejections.Load(); g != 1 {
		t.Fatalf("Rejections = %d, want 1", g)
	}
	resp = postRecords(t, ts.URL+"/v1/semisort", in, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after fault: status %d, want 200", resp.StatusCode)
	}
}

func TestInjectedHandlerPanicRecyclesWorkspace(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1})
	fault.Enable(fault.New(1).Arm(fault.ServerHandlerPanic, 0, 1))
	defer fault.Disable()

	in := genRecords(20_000, 2)
	resp := postRecords(t, ts.URL+"/v1/semisort", encodeRecords(in), nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "handler panic") {
		t.Fatalf("body %q", body)
	}
	g := s.pool.Gauges()
	if g.Panics.Load() != 1 || g.Discards.Load() != 1 {
		t.Fatalf("Panics=%d Discards=%d, want 1/1", g.Panics.Load(), g.Discards.Load())
	}
	if g.Active.Load() != 0 {
		t.Fatalf("Active = %d after panic, want 0 (slot recycled)", g.Active.Load())
	}

	// The pool (size 1: the same slot) keeps serving correct results.
	for i := 0; i < 3; i++ {
		resp = postRecords(t, ts.URL+"/v1/semisort", encodeRecords(in), nil)
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after panic: status %d", i, resp.StatusCode)
		}
		decoded, err := rec.DecodeRecords(nil, out)
		if err != nil || !rec.SamePermutation(in, decoded) || !rec.IsSemisorted(decoded) {
			t.Fatalf("request %d after panic: bad output (err=%v)", i, err)
		}
	}
}

func TestBucketOverflowFaultYieldsClean500(t *testing.T) {
	// DisableFallback turns retry exhaustion into an error; arming
	// ScatterOverflow for more attempts than MaxRetries guarantees
	// exhaustion. The request must fail with a clean 500 and the pool
	// must stay reusable.
	s, ts := newTestServer(t, Config{
		PoolSize: 1,
		Semisort: semisort.Config{
			DisableFallback: true,
			MaxRetries:      2,
			ScatterStrategy: semisort.ScatterProbing,
		},
	})
	fault.Enable(fault.New(1).Arm(fault.ScatterOverflow, 0, 8))

	in := genRecords(20_000, 3)
	resp := postRecords(t, ts.URL+"/v1/semisort", encodeRecords(in), nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fault.Disable()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overflow") {
		t.Fatalf("body %q does not mention overflow", body)
	}
	if g := s.pool.Gauges().Active.Load(); g != 0 {
		t.Fatalf("Active = %d, want 0", g)
	}

	// Injector off: the same request now succeeds on the same slot.
	resp = postRecords(t, ts.URL+"/v1/semisort", encodeRecords(in), nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after overflow fault: status %d, want 200", resp.StatusCode)
	}
}
