// Package server is the resident grouping service behind cmd/semisortd:
// it accepts concurrent semisort/group-by requests over HTTP and runs
// them on a shared, bounded pool of warm workspaces.
//
// Robustness is the design headline, in five mechanisms:
//
//   - Admission control: at most PoolSize requests sort at once and at
//     most MaxQueue wait; everything beyond that is shed with 503 +
//     Retry-After, so overload degrades to fast rejections instead of
//     unbounded queueing.
//   - Deadlines and disconnects: every request runs under a context that
//     combines the server's base context, the per-request deadline and
//     the client connection, wired into the sort via Config.Context —
//     a hung client or an expired deadline cancels the work
//     cooperatively at phase/chunk boundaries.
//   - Tenant budgets: each request sorts with a MaxRetainedBytes share
//     of its tenant's budget, so one hot tenant cannot pin the pool's
//     scratch memory (see Pool).
//   - Graceful drain: Shutdown stops accepting, lets in-flight requests
//     finish within the drain deadline, then cancels the stragglers —
//     every accepted request gets a response.
//   - Non-blocking logging: the access/error log is an MPSC ring buffer
//     (RingLog); a slow log sink drops entries, never blocks a handler.
//
// Failure modes are deterministic under test via the fault points
// fault.ServerAccept, fault.ServerAdmission and fault.ServerHandlerPanic:
// a panicking or overflowing request yields a clean 500, its workspace is
// discarded or recycled, and the pool stays usable.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	semisort "repro"
	"repro/internal/obsv"
)

// Config configures a Server. The zero value serves with the defaults
// noted per field.
type Config struct {
	// PoolSize is the number of warm workspaces (concurrent sorts).
	// Default GOMAXPROCS.
	PoolSize int
	// MaxQueue bounds the admission wait queue. Default 4×PoolSize.
	MaxQueue int
	// RequestTimeout is the per-request deadline ceiling; a request may
	// lower it via the timeout_ms query parameter but never raise it.
	// Default 30s.
	RequestTimeout time.Duration
	// DrainTimeout is how long Shutdown lets in-flight requests finish
	// before canceling them. Default 10s.
	DrainTimeout time.Duration
	// RetryAfter is the hint sent with 503 responses. Default 1s.
	RetryAfter time.Duration
	// MaxRequestBytes caps a request body. Default 64 MiB.
	MaxRequestBytes int64
	// DefaultTenantBudget is the retained-scratch budget per tenant in
	// bytes (see Pool); TenantBudgets overrides it per tenant id.
	// Default 256 MiB; <0 means uncapped.
	DefaultTenantBudget int64
	// TenantBudgets maps tenant ids to budget overrides.
	TenantBudgets map[string]int64
	// Semisort is the base sort configuration; per-request context and
	// budget fields are overlaid on it.
	Semisort semisort.Config
	// AccessLog receives the formatted ring-buffer access log; nil
	// disables writing (entries are still counted).
	AccessLog io.Writer
	// LogCapacity is the ring-buffer capacity in entries. Default 4096.
	LogCapacity int
	// Trace, when non-nil, receives one JSON object per request span
	// (the obsv.RequestSpan shape documented in docs/OBSERVABILITY.md).
	Trace io.Writer
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.PoolSize
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.DefaultTenantBudget == 0 {
		c.DefaultTenantBudget = 256 << 20
	} else if c.DefaultTenantBudget < 0 {
		c.DefaultTenantBudget = 0 // 0 means uncapped at the pool layer
	}
	if c.LogCapacity <= 0 {
		c.LogCapacity = 4096
	}
	return c
}

// A Server is the resident grouping service. Create with New, serve with
// Serve/ListenAndServe, stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *Pool
	log   *RingLog
	http  *http.Server
	start time.Time

	// baseCtx is the ancestor of every request context; cancelBase
	// fires when a drain overruns its deadline, cutting in-flight
	// sorts off cooperatively.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool
	seq        atomic.Int64

	traceMu  sync.Mutex
	traceEnc *json.Encoder
}

// New returns an unstarted Server.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:   c,
		start: time.Now(),
		log:   NewRingLog(c.LogCapacity, c.AccessLog),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.pool = newPool(poolConfig{
		Size:          c.PoolSize,
		MaxQueue:      c.MaxQueue,
		BaseConfig:    c.Semisort,
		DefaultBudget: c.DefaultTenantBudget,
		Budgets:       c.TenantBudgets,
	})
	if c.Trace != nil {
		s.traceEnc = json.NewEncoder(c.Trace)
	}
	s.http = &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	return s
}

// Pool returns the server's workspace pool (stats and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Log returns the server's ring-buffer access log.
func (s *Server) Log() *RingLog { return s.log }

// Handler returns the server's HTTP handler (also used by httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/semisort", s.handleSemisort)
	mux.HandleFunc("POST /v1/groupby", s.handleGroupBy)
	mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// Serve accepts connections on ln until Shutdown. Like
// http.Server.Serve, it returns http.ErrServerClosed after a clean stop.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.http.Addr = addr
	return s.http.ListenAndServe()
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, waits up to Config.DrainTimeout (or ctx, whichever ends
// first) for in-flight requests to finish, then cancels the stragglers'
// contexts so their sorts stop cooperatively and they respond with 503.
// Every accepted request gets a response. The ring log is flushed and
// closed last. Shutdown returns nil on a clean drain, even if stragglers
// had to be canceled; it returns an error only if connections could not
// be closed at all.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	err := s.http.Shutdown(dctx)
	if err != nil {
		// Drain deadline overrun: cancel in-flight work and give the
		// (now fast-failing) handlers a moment to write responses.
		s.cancelBase()
		fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer fcancel()
		if err = s.http.Shutdown(fctx); err != nil {
			err = fmt.Errorf("server: force close after drain timeout: %w", s.http.Close())
		}
	}
	s.cancelBase()
	s.log.Close()
	if err != nil {
		return err
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// HandleSignals registers sigs (default SIGINT/SIGTERM) to trigger a
// graceful Shutdown. It returns a channel that receives the Shutdown
// error (nil on a clean drain) after a signal has been handled, and a
// stop function that unregisters the handler.
func (s *Server) HandleSignals(sigs ...os.Signal) (<-chan error, func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan error, 1)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		done <- s.Shutdown(context.Background())
	}()
	var stopOnce sync.Once
	return done, func() { stopOnce.Do(func() { signal.Stop(ch); close(ch) }) }
}

// statsPayload is the /v1/stats response shape.
type statsPayload struct {
	Pool       obsv.PoolSnapshot      `json:"pool"`
	Tenants    map[string]tenantStats `json:"tenants"`
	Log        logStats               `json:"log"`
	Requests   int64                  `json:"requests"`
	UptimeS    float64                `json:"uptime_s"`
	Goroutines int                    `json:"goroutines"`
	Draining   bool                   `json:"draining"`
}

type tenantStats struct {
	RetainedBytes int64 `json:"retained_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

type logStats struct {
	Drops       int64 `json:"drops"`
	WriteErrors int64 `json:"write_errors"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tenants := make(map[string]tenantStats)
	for t, b := range s.pool.TenantRetained() {
		tenants[t] = tenantStats{RetainedBytes: b, BudgetBytes: s.pool.TenantBudget(t)}
	}
	p := statsPayload{
		Pool:       s.pool.Gauges().Snapshot(),
		Tenants:    tenants,
		Log:        logStats{Drops: s.log.Drops(), WriteErrors: s.log.WriteErrors()},
		Requests:   s.seq.Load(),
		UptimeS:    time.Since(s.start).Seconds(),
		Goroutines: runtime.NumGoroutine(),
		Draining:   s.draining.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// trace writes one request span to the trace sink and the ring log.
func (s *Server) trace(span obsv.RequestSpan) {
	s.log.Push(span)
	if s.traceEnc != nil {
		s.traceMu.Lock()
		s.traceEnc.Encode(span)
		s.traceMu.Unlock()
	}
}
