package semisort

// Aggregation helpers built on the semisort. These are the operations the
// paper's applications reduce to — MapReduce's shuffle+reduce and SQL's
// GROUP BY aggregates — packaged for direct use.
//
// CountBy, SumBy, Distinct and ReduceBy (when given a Merge) run FUSED:
// the fold happens inside the semisort pipeline — heavy keys accumulate
// into per-worker cells, light buckets reduce in-arena during Phase 4 —
// so no grouped intermediate (and none of its per-group slice headers) is
// ever materialized. ReduceBy without a Merge, and MaxBy, materialize
// groups first and fold sequentially, preserving first-appearance fold
// order. See docs/AGGREGATION.md for when each path runs and what it
// requires.

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/parallel"
	"repro/internal/rec"
)

// Number covers the numeric types SumBy can accumulate.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// A Reduction describes how ReduceBy folds one group: Fold accumulates
// one item into a partial accumulator (starting from Identity), and
// Merge combines two partial accumulators of the same group.
//
// With Merge set, the reduction runs fused inside the pipeline: pipeline
// workers fold disjoint subsets of a group concurrently and their
// partials are merged once at the end. Fold and merge order are
// scheduling-dependent, so Identity/Fold/Merge must form a commutative
// monoid (order-insensitive, e.g. sums, counts, min/max, bitwise or) for
// the result to be well-defined. Fold and Merge run concurrently on
// pipeline workers and must not touch shared state.
//
// With Merge nil, ReduceBy materializes each group first and folds it
// sequentially in group order — the reference semantics for folds that
// are not commutative monoids.
type Reduction[T, A any] struct {
	Identity A
	Fold     func(acc A, item T) A
	Merge    func(a, b A) A
}

// noCell is the fused accumulator sentinel: "no slab cell assigned yet".
const noCell = ^uint64(0)

// fusedReduce hashes every item's key to a 64-bit record (Value = item
// index) and runs the fused core reduce over the hashes, retrying with a
// fresh hash seed when the spec's callbacks report a 64-bit collision
// between distinct keys via collided (the Las Vegas conversion By uses,
// with the verification riding inside the fold instead of a second
// pass). The returned group records and representative indices are valid
// until the function's workspace is garbage-collected; err wraps
// *PanicError if a user callback panicked on a pipeline worker.
func fusedReduce[T any, K comparable](items []T, key func(T) K, cfg *Config,
	sp core.ReduceSpec, collided *atomic.Bool) (out []rec.Record, reps []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*parallel.PanicError)
			if !ok {
				panic(r) // not from a fork–join worker; let it crash
			}
			out, reps, err = nil, nil, fmt.Errorf("semisort: panic in user callback: %w", pe)
		}
	}()
	n := len(items)
	procs := 0
	var obs obsv.Observer
	if cfg != nil {
		procs = cfg.Procs
		obs = cfg.Observer
	}
	var epoch time.Time
	if obs != nil {
		epoch = time.Now()
	}
	// Clear the collision flag at every core attempt: an abandoned
	// (overflowed) attempt may have flagged a collision from partial
	// folds, but the winning attempt re-folds every record, so any
	// genuine collision resurfaces.
	userReset := sp.Reset
	sp.Reset = func() {
		collided.Store(false)
		if userReset != nil {
			userReset()
		}
	}
	recs := make([]rec.Record, n)
	var ws core.Workspace
	var lastErr error
	for attempt := 0; attempt < genericRetries; attempt++ {
		seed := maphash.MakeSeed()
		if obs != nil {
			obs.PhaseStart(attempt, obsv.PhaseHash)
		}
		t0 := time.Now()
		parallel.For(procs, n, 2048, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				recs[i] = rec.Record{
					Key:   maphash.Comparable(seed, key(items[i])),
					Value: uint64(i),
				}
			}
		})
		if obs != nil {
			obs.PhaseEnd(obsv.Span{
				Attempt: attempt, Phase: obsv.PhaseHash,
				Start: t0.Sub(epoch), Duration: time.Since(t0),
				Outcome: obsv.OutcomeOK,
			})
		}
		out, reps, _, err := core.ReduceShared(&ws, recs, cfg, sp)
		if err != nil {
			return nil, nil, err
		}
		if fault.Should(fault.HashCollision) {
			collided.Store(true)
		}
		if !collided.Load() {
			return out, reps, nil
		}
		lastErr = fmt.Errorf("semisort: 64-bit hash collision between distinct keys (attempt %d)", attempt+1)
	}
	return nil, nil, lastErr
}

// countSpec builds the fused pure-count spec shared by CountBy and
// Distinct: the accumulator is the multiplicity itself (no cell slab),
// and the fold doubles as the collision check — two items in one group
// whose original keys differ mean a 64-bit hash collision.
func countSpec[T any, K comparable](items []T, key func(T) K, collided *atomic.Bool) core.ReduceSpec {
	return core.ReduceSpec{
		Fold: func(acc, rep, v uint64) uint64 {
			if v != rep && key(items[v]) != key(items[rep]) {
				collided.Store(true)
			}
			return acc + 1
		},
		Merge: func(a, repA, b, repB uint64) uint64 {
			if key(items[repA]) != key(items[repB]) {
				collided.Store(true)
			}
			return a + b
		},
	}
}

// CountBy returns the multiplicity of each key among items. It runs
// fused: counts accumulate inside the pipeline and no grouped
// intermediate is materialized.
func CountBy[T any, K comparable](items []T, key func(T) K, cfg *Config) (map[K]int, error) {
	var collided atomic.Bool
	out, reps, err := fusedReduce(items, key, cfg, countSpec(items, key, &collided), &collided)
	if err != nil {
		return nil, err
	}
	m := make(map[K]int, len(out))
	for g := range out {
		m[key(items[reps[g]])] = int(out[g].Value)
	}
	return m, nil
}

// SumBy groups items by key and sums val over each group, fused inside
// the pipeline. Addition over floating-point values is not associative,
// so float sums may differ across runs in the last units of precision
// (the summation order is scheduling-dependent); integer sums are exact.
func SumBy[T any, K comparable, N Number](items []T, key func(T) K, val func(T) N, cfg *Config) (map[K]N, error) {
	return ReduceBy(items, key, Reduction[T, N]{
		Fold:  func(acc N, item T) N { return acc + val(item) },
		Merge: func(a, b N) N { return a + b },
	}, cfg)
}

// ReduceBy groups items by key and folds each group with r. It is the
// general shuffle+reduce of MapReduce.
//
// With r.Merge set the reduction runs fused (see Reduction for the
// commutative-monoid requirement); with r.Merge nil each group is
// materialized and folded sequentially from r.Identity in group order.
func ReduceBy[T any, K comparable, A any](items []T, key func(T) K, r Reduction[T, A], cfg *Config) (map[K]A, error) {
	if r.Fold == nil {
		return nil, errors.New("semisort: ReduceBy needs a Fold")
	}
	if r.Merge == nil {
		return reduceByMaterialized(items, key, r, cfg)
	}

	// The fused accumulators are uint64, so accumulators of arbitrary
	// type A live in a pre-sized slab the uint64 indexes. Every slab cell
	// is claimed by a group's first fold and each of the n records
	// triggers at most one first fold per attempt, so n cells always
	// suffice; Reset rewinds the slab when a Las Vegas retry discards an
	// attempt's partial folds.
	cells := make([]A, len(items))
	var next atomic.Uint64
	var collided atomic.Bool
	sp := core.ReduceSpec{
		Identity: noCell,
		Fold: func(acc, rep, v uint64) uint64 {
			if v != rep && key(items[v]) != key(items[rep]) {
				collided.Store(true)
			}
			if acc == noCell {
				c := next.Add(1) - 1
				cells[c] = r.Fold(r.Identity, items[v])
				return c
			}
			cells[acc] = r.Fold(cells[acc], items[v])
			return acc
		},
		Merge: func(a, repA, b, repB uint64) uint64 {
			if key(items[repA]) != key(items[repB]) {
				collided.Store(true)
			}
			cells[a] = r.Merge(cells[a], cells[b])
			return a
		},
		Reset: func() { next.Store(0) },
	}
	out, reps, err := fusedReduce(items, key, cfg, sp, &collided)
	if err != nil {
		return nil, err
	}
	m := make(map[K]A, len(out))
	for g := range out {
		m[key(items[reps[g]])] = cells[out[g].Value]
	}
	return m, nil
}

// reduceByMaterialized is the materialize-then-reduce reference: group
// first, then fold each group sequentially in group order. ReduceBy
// routes here when r.Merge is nil; the differential tests fold both
// paths over the same inputs.
func reduceByMaterialized[T any, K comparable, A any](items []T, key func(T) K, r Reduction[T, A], cfg *Config) (map[K]A, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]A)
	for k, g := range groups {
		acc := r.Identity
		for _, item := range g {
			acc = r.Fold(acc, item)
		}
		out[k] = acc
	}
	return out, nil
}

// Distinct returns one representative per distinct value of items, in
// unspecified order. It is the semisort form of SQL's DISTINCT, run
// fused: only the representatives are ever written out.
func Distinct[T comparable](items []T, cfg *Config) ([]T, error) {
	key := func(v T) T { return v }
	var collided atomic.Bool
	out, reps, err := fusedReduce(items, key, cfg, countSpec(items, key, &collided), &collided)
	if err != nil {
		return nil, err
	}
	res := make([]T, len(out))
	for g := range res {
		res[g] = items[reps[g]]
	}
	return res, nil
}

// MaxBy groups items by key and keeps, per group, the item with the
// greatest measure. Ties keep the first encountered — an order-sensitive
// guarantee a scheduling-dependent fused merge cannot provide, so MaxBy
// stays on the materialized path.
func MaxBy[T any, K comparable, N Number](items []T, key func(T) K, measure func(T) N, cfg *Config) (map[K]T, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]T)
	for k, g := range groups {
		best := g[0]
		bestV := measure(best)
		for _, item := range g[1:] {
			if v := measure(item); v > bestV {
				best, bestV = item, v
			}
		}
		out[k] = best
	}
	return out, nil
}
