package semisort

// Aggregation helpers built on the semisort. These are the operations the
// paper's applications reduce to — MapReduce's shuffle+reduce and SQL's
// GROUP BY aggregates — packaged for direct use.

// Number covers the numeric types SumBy can accumulate.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// CountBy returns the multiplicity of each key among items.
func CountBy[T any, K comparable](items []T, key func(T) K, cfg *Config) (map[K]int, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int)
	for k, g := range groups {
		out[k] = len(g)
	}
	return out, nil
}

// SumBy groups items by key and sums val over each group.
func SumBy[T any, K comparable, N Number](items []T, key func(T) K, val func(T) N, cfg *Config) (map[K]N, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]N)
	for k, g := range groups {
		var s N
		for _, item := range g {
			s += val(item)
		}
		out[k] = s
	}
	return out, nil
}

// ReduceBy groups items by key and folds each group with fn, starting from
// the zero value of A. It is the general shuffle+reduce of MapReduce.
func ReduceBy[T any, K comparable, A any](items []T, key func(T) K, fn func(acc A, item T) A, cfg *Config) (map[K]A, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]A)
	for k, g := range groups {
		var acc A
		for _, item := range g {
			acc = fn(acc, item)
		}
		out[k] = acc
	}
	return out, nil
}

// Distinct returns one representative per distinct value of items, in
// unspecified order. It is the semisort form of SQL's DISTINCT.
func Distinct[T comparable](items []T, cfg *Config) ([]T, error) {
	groups, err := GroupBy(items, func(v T) T { return v }, cfg)
	if err != nil {
		return nil, err
	}
	var out []T
	for k := range groups {
		out = append(out, k)
	}
	return out, nil
}

// MaxBy groups items by key and keeps, per group, the item with the
// greatest measure. Ties keep the first encountered.
func MaxBy[T any, K comparable, N Number](items []T, key func(T) K, measure func(T) N, cfg *Config) (map[K]T, error) {
	groups, err := GroupBy(items, key, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[K]T)
	for k, g := range groups {
		best := g[0]
		bestV := measure(best)
		for _, item := range g[1:] {
			if v := measure(item); v > bestV {
				best, bestV = item, v
			}
		}
		out[k] = best
	}
	return out, nil
}
