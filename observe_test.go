package semisort

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/obsv"
)

// The generic front-end contributes hash and verify spans around the
// core trace, indexed by rehash attempt.
func TestByEmitsHashAndVerifySpans(t *testing.T) {
	items := make([]int, 20000)
	for i := range items {
		items[i] = i % 64
	}
	var col Collector
	out, err := By(items, func(v int) int { return v }, &Config{Procs: 2, Observer: &col})
	if err != nil {
		t.Fatalf("By: %v", err)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d items, want %d", len(out), len(items))
	}

	var hash, verify []obsv.Span
	topLevel := 0
	for _, s := range col.Spans() {
		switch s.Phase {
		case PhaseHash:
			hash = append(hash, s)
		case PhaseVerify:
			verify = append(verify, s)
		case obsv.PhaseSampleRound:
			// Nested adaptive-sampling round spans; not a pipeline phase.
			continue
		}
		topLevel++
	}
	if len(hash) != 1 || len(verify) != 1 {
		t.Fatalf("hash spans = %d, verify spans = %d, want 1 each", len(hash), len(verify))
	}
	if hash[0].Attempt != 0 || hash[0].Outcome != obsv.OutcomeOK {
		t.Errorf("hash span = %+v, want attempt 0 ok", hash[0])
	}
	if verify[0].Outcome != obsv.OutcomeOK {
		t.Errorf("verify span = %+v, want ok", verify[0])
	}
	// The core's own trace still arrives: six ok spans for attempt 0.
	if topLevel != 8 {
		t.Errorf("top-level spans = %d, want 8 (hash + 6 core phases + verify)", topLevel)
	}
}

// An injected hash collision must surface as a verify span with outcome
// "collision" for the failed attempt, then a clean rehash attempt.
func TestByTracesRehashOnCollision(t *testing.T) {
	items := make([]int, 5000)
	for i := range items {
		items[i] = i % 10
	}
	fault.Enable(fault.New(5).Arm(fault.HashCollision, 0, 1))
	defer fault.Disable()
	var col Collector
	if _, err := By(items, func(v int) int { return v }, &Config{Procs: 2, Observer: &col}); err != nil {
		t.Fatalf("By with one injected collision: %v", err)
	}

	var verify []obsv.Span
	for _, s := range col.Spans() {
		if s.Phase == PhaseVerify {
			verify = append(verify, s)
		}
	}
	if len(verify) != 2 {
		t.Fatalf("verify spans = %+v, want 2 (collision then ok)", verify)
	}
	if verify[0].Attempt != 0 || verify[0].Outcome != obsv.OutcomeCollision {
		t.Errorf("first verify span = %+v, want attempt 0 collision", verify[0])
	}
	if verify[1].Attempt != 1 || verify[1].Outcome != obsv.OutcomeOK {
		t.Errorf("second verify span = %+v, want attempt 1 ok", verify[1])
	}
}
