# parallel-semisort — build, test and reproduction targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-smoke fuzz check stress sweep sample-sweep soak-smoke outofcore-smoke repro repro-quick examples clean

all: build vet test

# check is the CI gate: build, vet, and the full test suite (including the
# fault-injection matrix) under the race detector.
check: build vet
	$(GO) test -race -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# stress mirrors the CI race-stress matrix: core + parallel under the race
# detector at several GOMAXPROCS, repeated, so both scatter strategies see
# varied interleavings.
stress:
	for p in 1 2 8; do \
		GOMAXPROCS=$$p $(GO) test -race -count=3 -short ./internal/core/... ./internal/parallel/... || exit 1; \
	done

# sweep runs the duplication-spectrum differential suite twice (the
# second pass exercises warm-workspace reuse on the same process) plus
# the planner-resolution tests — the acceptance gate for the
# skew-adaptive dovetail route.
sweep:
	$(GO) test -race -count=2 -run 'Spectrum|Dovetail' ./internal/core/ .

# sample-sweep mirrors the CI adaptive-sampling step: the multi-round
# estimator's proc-count determinism, budget/round-cap contracts,
# round-boundary fault aborts, and the adaptive-vs-one-shot differential
# matrix under the race detector with warm-workspace repetition.
sample-sweep:
	$(GO) test -race -count=2 -run 'Adaptive|Sampl|SampleRound|SizeModel' ./internal/core/ .

# soak-smoke mirrors the CI job of the same name: a short leak-gated soak
# of the resident server under the race detector — mixed distributions,
# SIGTERM mid-run, gates on p99/zero-drops/tenant-budgets/goroutines.
# The full acceptance run is `go run ./cmd/soaksemi` with defaults (60s).
soak-smoke:
	$(GO) run -race ./cmd/soaksemi -duration 30s -concurrency 4 -pool 2 \
		-batch 2048 -report SOAK_semisort.json

# outofcore-smoke mirrors the CI job of the same name: the external
# shuffle's fault/resume suite under the race detector, then the
# out-of-core experiment at a small size — serial ablation vs pipelined
# vs compressed, plus the injected-fault resume demonstration.
outofcore-smoke:
	$(GO) test -race -count=2 ./external/
	$(GO) run ./cmd/semibench -experiment outofcore -n 2e5 -procs 2 -reps 2

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke mirrors the CI job of the same name: every benchmark for
# one iteration, gating compilation and setup, not speed. The sampling
# experiment rides along at a small size so the adaptive-vs-one-shot
# harness itself (distributions, stress config, table plumbing) cannot
# rot between full bench runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/semibench -experiment sampling -n 1e5 -procs 2 -reps 2

# Short fuzzing passes over the three fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzRecords -fuzztime=30s .
	$(GO) test -fuzz=FuzzBy -fuzztime=30s .
	$(GO) test -fuzz=FuzzConfigs -fuzztime=30s .

# Full reproduction of the paper's evaluation (Section 5) at laptop scale.
repro:
	$(GO) run ./cmd/semibench -experiment all -n 4m -reps 3 -procs 1,2,4,8 -csv results.csv

# Fast smoke reproduction (~1 minute).
repro-quick:
	$(GO) run ./cmd/semibench -experiment all -n 2e5 -reps 1 -procs 1,2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wordcount -docs 500
	$(GO) run ./examples/hashjoin -orders 20000 -customers 2000
	$(GO) run ./examples/graphgroup -vertices 5000 -edges 30000
	$(GO) run ./examples/analytics -events 50000
	$(GO) run ./examples/outofcore -records 500000

clean:
	$(GO) clean ./...
	rm -f results.csv test_output.txt bench_output.txt
