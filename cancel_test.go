package semisort

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/distgen"
	"repro/internal/fault"
)

// Cancellation regressions: an already-expired deadline must abort before
// any parallel phase spins up, and a cancel landing mid-sort must be
// observed at a phase boundary — under both scatter strategies, without
// leaking worker goroutines either way.

func cancelTestInput(n int) []Record {
	return distgen.Generate(0, n, distgen.Spec{Kind: distgen.Zipfian, Param: 1e4}, 11)
}

func TestRecordsCtxExpiredDeadline(t *testing.T) {
	in := cancelTestInput(200_000)
	for _, strat := range []ScatterStrategy{ScatterProbing, ScatterCounting} {
		t.Run(strat.String(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithDeadline(context.Background(),
				time.Now().Add(-time.Second))
			defer cancel()
			out, err := RecordsCtx(ctx, in, &Config{ScatterStrategy: strat})
			if err == nil {
				t.Fatal("expired deadline: no error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
			}
			if out != nil {
				t.Error("output non-nil alongside a cancellation error")
			}
			settleGoroutines(t, base)
		})
	}
}

func TestRecordsCtxMidPhaseCancel(t *testing.T) {
	// Deterministic mid-flight cancel: the first phase boundary blocks
	// until cancel() has run, so the sort is guaranteed to observe a
	// canceled context while work remains.
	in := cancelTestInput(200_000)
	for _, strat := range []ScatterStrategy{ScatterProbing, ScatterCounting} {
		t.Run(strat.String(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			inj := fault.New(1).Arm(fault.PhaseBoundary, 0, 1)
			inj.OnFire(fault.PhaseBoundary, cancel)
			fault.Enable(inj)
			defer fault.Disable()

			out, err := RecordsCtx(ctx, in, &Config{ScatterStrategy: strat, Procs: 4})
			if err == nil {
				t.Fatal("mid-phase cancel: no error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if out != nil {
				t.Error("output non-nil alongside a cancellation error")
			}
			settleGoroutines(t, base)
		})
	}
}

func TestSorterSurvivesCancelThenSorts(t *testing.T) {
	// A canceled sort must not poison a warm Sorter: the next call on the
	// same workspace has to produce a correct result.
	in := cancelTestInput(100_000)
	for _, strat := range []ScatterStrategy{ScatterProbing, ScatterCounting} {
		t.Run(strat.String(), func(t *testing.T) {
			base := runtime.NumGoroutine()
			s := NewSorter(&Config{ScatterStrategy: strat})

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			cfg := Config{ScatterStrategy: strat, Context: ctx}
			if _, _, err := s.SortConfigShared(in, &cfg); err == nil {
				t.Fatal("canceled sort on warm sorter: no error")
			}

			out, err := s.Sort(in)
			if err != nil {
				t.Fatalf("sort after cancel: %v", err)
			}
			if !IsSemisorted(out) {
				t.Fatal("sort after cancel: output not semisorted")
			}
			settleGoroutines(t, base)
		})
	}
}
