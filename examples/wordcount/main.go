// Wordcount: the MapReduce shuffle, the paper's headline motivation.
//
// "In the popular MapReduce paradigm, the most expensive step is typically
// the so-called shuffle step, which collects the tuples with equal keys
// returned from the map stage together so the reducer can be applied to
// each group." (Section 1)
//
// This example runs a complete word count: a map stage emits (word, 1)
// pairs from synthetic documents, and a single fused ReduceBy call does
// the shuffle AND the reduction — counts accumulate inside the semisort's
// scatter and local phases, so the grouped intermediate array is never
// materialized (see docs/AGGREGATION.md).
//
// Run with: go run ./examples/wordcount [-docs 2000] [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	semisort "repro"
)

// vocabulary with a skewed (Zipf-like) usage pattern, so some words are
// "heavy keys" and most are light — the mixed workload the algorithm's
// heavy/light split is designed for.
var vocab = strings.Fields(`
the of and a to in is you that it he was for on are as with his they I at
be this have from or one had by word but not what all were we when your
can said there use an each which she do how their if will up other about
out many then them these so some her would make like him into time has
look two more write go see number no way could people my than first water
been call who oil its now find long down day did get come made may part`)

type pair struct {
	word  string
	count int
}

func main() {
	docs := flag.Int("docs", 2000, "number of synthetic documents")
	top := flag.Int("top", 10, "how many top words to print")
	flag.Parse()

	// --- Map stage: emit (word, 1) for every word of every document.
	rng := rand.New(rand.NewSource(42))
	var emitted []pair
	for d := 0; d < *docs; d++ {
		words := 50 + rng.Intn(100)
		for w := 0; w < words; w++ {
			// Quadratic skew: low indices picked far more often.
			i := rng.Intn(len(vocab)) * rng.Intn(len(vocab)) / len(vocab)
			emitted = append(emitted, pair{word: vocab[i], count: 1})
		}
	}
	fmt.Printf("map stage emitted %d pairs over %d distinct words\n", len(emitted), len(vocab))

	// --- Shuffle + reduce, fused: counts fold during the semisort.
	// Integer sums form a commutative monoid, so Merge is just +, and the
	// reducer runs fused instead of materializing the groups first.
	t0 := time.Now()
	counts, err := semisort.ReduceBy(emitted,
		func(p pair) string { return p.word },
		semisort.Reduction[pair, int]{
			Fold:  func(acc int, p pair) int { return acc + p.count },
			Merge: func(a, b int) int { return a + b },
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	totals := make([]pair, 0, len(counts))
	for word, sum := range counts {
		totals = append(totals, pair{word: word, count: sum})
	}
	fmt.Printf("fused shuffle+reduce took %v, %d groups\n", time.Since(t0), len(totals))

	sort.Slice(totals, func(i, j int) bool { return totals[i].count > totals[j].count })
	fmt.Printf("\ntop %d words:\n", *top)
	for i := 0; i < *top && i < len(totals); i++ {
		fmt.Printf("  %-8s %6d\n", totals[i].word, totals[i].count)
	}

	// Sanity: reduced totals must preserve the emitted pair count.
	sum := 0
	for _, t := range totals {
		sum += t.count
	}
	if sum != len(emitted) {
		log.Fatalf("lost pairs: reduced %d of %d", sum, len(emitted))
	}
	fmt.Printf("\nverified: %d pairs accounted for\n", sum)
}
