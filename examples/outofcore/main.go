// Outofcore: shuffle a record stream through disk with the external
// semisort — what the MapReduce shuffle does when the mapped tuples exceed
// memory. Records are spilled to hash partitions as they stream in, then
// each partition is semisorted in memory and its groups emitted.
//
// Run with: go run ./examples/outofcore [-records 2000000] [-partitions 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	semisort "repro"
	"repro/external"
	"repro/internal/distgen"
)

func main() {
	n := flag.Int("records", 2_000_000, "records to stream")
	parts := flag.Int("partitions", 32, "spill partitions")
	flag.Parse()

	sh, err := external.NewShuffler(&external.Config{Partitions: *parts})
	if err != nil {
		log.Fatal(err)
	}
	defer sh.Close()

	// Stream Zipf-distributed records in chunks, as a mapper would emit
	// them. distgen produces the paper's record format directly.
	t0 := time.Now()
	const chunk = 1 << 16
	streamed := 0
	for streamed < *n {
		c := min(chunk, *n-streamed)
		recs := distgen.Generate(0, c, distgen.Spec{Kind: distgen.Zipfian, Param: 1e5}, uint64(streamed))
		if err := sh.AddBatch(recs); err != nil {
			log.Fatal(err)
		}
		streamed += c
	}
	spillTime := time.Since(t0)

	t0 = time.Now()
	groups, maxGroup, total := 0, 0, 0
	var hotKey uint64
	err = sh.ForEachGroup(func(key uint64, group []semisort.Record) error {
		groups++
		total += len(group)
		if len(group) > maxGroup {
			maxGroup = len(group)
			hotKey = key
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	groupTime := time.Since(t0)

	if total != *n {
		log.Fatalf("lost records: %d of %d emitted", total, *n)
	}
	fmt.Printf("streamed  %d records to disk in %v (%.1f Mrec/s)\n",
		*n, spillTime, float64(*n)/spillTime.Seconds()/1e6)
	fmt.Printf("grouped   %d groups in %v (%.1f Mrec/s)\n",
		groups, groupTime, float64(*n)/groupTime.Seconds()/1e6)
	fmt.Printf("hot group key=%#x holds %d records (%.1f%%)\n",
		hotKey, maxGroup, 100*float64(maxGroup)/float64(*n))
	fmt.Println("verified: every record emitted exactly once")
}
