// Graphgroup: collect values at graph vertices, the paper's graph-
// algorithm motivation ("to collect values associated with vertices in a
// graph", Section 1, citing parallel graph coloring).
//
// Given an edge list of a random power-law graph, we semisort the directed
// edges by source vertex, which yields a CSR-style adjacency structure in
// two passes, then compute per-vertex degree statistics and a greedy
// coloring order from it.
//
// Run with: go run ./examples/graphgroup [-vertices 20000] [-edges 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	semisort "repro"
)

type edge struct{ src, dst uint32 }

func main() {
	nv := flag.Int("vertices", 20000, "vertex count")
	ne := flag.Int("edges", 100000, "edge count")
	flag.Parse()

	// Power-law-ish edges: hub vertices attract many edges — exactly the
	// heavy-key skew the semisort's heavy/light split targets.
	rng := rand.New(rand.NewSource(99))
	pick := func() uint32 {
		return uint32(rng.Intn(*nv) * rng.Intn(*nv) / *nv)
	}
	edges := make([]edge, *ne)
	for i := range edges {
		edges[i] = edge{src: pick(), dst: uint32(rng.Intn(*nv))}
	}

	t0 := time.Now()
	// Group directed edges by source: the semisorted edge list is a CSR
	// adjacency in which each vertex's out-edges are contiguous.
	bySrc, err := semisort.By(edges, func(e edge) uint32 { return e.src }, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Walk runs to build offsets and per-vertex degrees.
	type vertexInfo struct {
		v      uint32
		off    int
		degree int
	}
	var infos []vertexInfo
	i := 0
	for i < len(bySrc) {
		v := bySrc[i].src
		j := i
		for j < len(bySrc) && bySrc[j].src == v {
			j++
		}
		infos = append(infos, vertexInfo{v: v, off: i, degree: j - i})
		i = j
	}
	elapsed := time.Since(t0)

	maxDeg, sumDeg := 0, 0
	for _, vi := range infos {
		sumDeg += vi.degree
		if vi.degree > maxDeg {
			maxDeg = vi.degree
		}
	}
	fmt.Printf("grouped %d edges by source in %v\n", len(edges), elapsed)
	fmt.Printf("vertices with out-edges: %d / %d\n", len(infos), *nv)
	fmt.Printf("max out-degree: %d, mean (over non-isolated): %.1f\n",
		maxDeg, float64(sumDeg)/float64(len(infos)))

	// Greedy coloring in descending-degree order (the largest-degree-first
	// heuristic from the graph coloring literature the paper cites). The
	// adjacency lookups use the grouped edge array directly.
	offOf := make(map[uint32]vertexInfo, len(infos))
	for _, vi := range infos {
		offOf[vi.v] = vi
	}
	// Sort infos by degree descending (small helper; n is vertex count).
	for a := 1; a < len(infos); a++ {
		for b := a; b > 0 && infos[b].degree > infos[b-1].degree; b-- {
			infos[b], infos[b-1] = infos[b-1], infos[b]
		}
		if a > 2000 {
			break // cap the demo's O(n^2) insertion sort on huge graphs
		}
	}

	colors := make(map[uint32]int, *nv)
	maxColor := 0
	for _, vi := range infos {
		used := map[int]bool{}
		for _, e := range bySrc[vi.off : vi.off+vi.degree] {
			if c, ok := colors[e.dst]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[vi.v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	fmt.Printf("greedy coloring used %d colors\n", maxColor+1)

	// Verify the grouping is a true permutation with contiguous groups.
	if len(bySrc) != len(edges) {
		log.Fatal("edge count changed")
	}
	seen := map[uint32]bool{}
	for i := 0; i < len(bySrc); {
		v := bySrc[i].src
		if seen[v] {
			log.Fatalf("group for vertex %d split", v)
		}
		seen[v] = true
		for i < len(bySrc) && bySrc[i].src == v {
			i++
		}
	}
	fmt.Println("verified: every vertex's edges are contiguous")
}
