// Analytics: GROUP BY-style aggregation over an event stream, the
// database-language motivation from the paper's introduction ("most
// database languages also have a direct groupBy operation that groups
// together records by a given key").
//
// A synthetic clickstream is aggregated four ways through the semisort-
// backed helpers: events per country (CountBy) and revenue per product
// (SumBy) run fused — the sums accumulate during the semisort's scatter
// and local phases, with no grouped intermediate (docs/AGGREGATION.md);
// spend per user runs through the same fused path via an explicit
// ReduceBy; and each user's most expensive purchase (MaxBy) reduces over
// materialized groups, because its first-encountered tie-break is
// order-sensitive. StableBy then reconstructs per-user session timelines,
// demonstrating the stability guarantee.
//
// Run with: go run ./examples/analytics [-events 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	semisort "repro"
)

type event struct {
	User    int
	Country string
	Product string
	Price   float64
	Seq     int
}

func main() {
	n := flag.Int("events", 200000, "number of synthetic events")
	flag.Parse()

	countries := []string{"US", "DE", "JP", "BR", "IN", "FR"}
	products := []string{"widget", "gadget", "gizmo", "doohickey"}
	rng := rand.New(rand.NewSource(2024))

	events := make([]event, *n)
	for i := range events {
		events[i] = event{
			User:    rng.Intn(*n / 50),
			Country: countries[rng.Intn(len(countries))],
			Product: products[rng.Intn(len(products))],
			Price:   float64(rng.Intn(10000)) / 100,
			Seq:     i,
		}
	}

	t0 := time.Now()

	byCountry, err := semisort.CountBy(events, func(e event) string { return e.Country }, nil)
	check(err)
	revenue, err := semisort.SumBy(events,
		func(e event) string { return e.Product },
		func(e event) float64 { return e.Price }, nil)
	check(err)
	biggest, err := semisort.MaxBy(events,
		func(e event) int { return e.User },
		func(e event) float64 { return e.Price }, nil)
	check(err)
	// Fused custom reduction: cents spent per user. Integer cents keep
	// the fold commutative-exact (float sums would be order-sensitive in
	// the last bits; SumBy documents the same caveat).
	spent, err := semisort.ReduceBy(events,
		func(e event) int { return e.User },
		semisort.Reduction[event, int]{
			Fold:  func(acc int, e event) int { return acc + int(e.Price*100+0.5) },
			Merge: func(a, b int) int { return a + b },
		}, nil)
	check(err)

	fmt.Printf("aggregated %d events in %v\n\n", *n, time.Since(t0))

	fmt.Println("events per country:")
	for _, c := range countries {
		fmt.Printf("  %s: %d\n", c, byCountry[c])
	}
	fmt.Println("\nrevenue per product:")
	for _, p := range products {
		fmt.Printf("  %-9s %12.2f\n", p, revenue[p])
	}

	// Top spender overall, from the per-user maxima.
	topUser, topPrice := -1, -1.0
	for u, e := range biggest {
		if e.Price > topPrice {
			topUser, topPrice = u, e.Price
		}
	}
	fmt.Printf("\nbiggest single purchase: user %d paid %.2f (their total spend: %.2f)\n",
		topUser, topPrice, float64(spent[topUser])/100)

	// Stable grouping: each user's events in original (temporal) order.
	timeline, err := semisort.StableBy(events, func(e event) int { return e.User }, nil)
	check(err)
	for i := 1; i < len(timeline); i++ {
		if timeline[i].User == timeline[i-1].User && timeline[i].Seq <= timeline[i-1].Seq {
			log.Fatal("stability violated: events out of temporal order within a user")
		}
	}
	fmt.Println("verified: per-user timelines preserved by StableBy")

	// Show one sample session.
	users := make([]int, 0, len(biggest))
	for u := range biggest {
		users = append(users, u)
	}
	sort.Ints(users)
	sample := users[len(users)/2]
	fmt.Printf("\nsession of user %d:\n", sample)
	shown := 0
	for _, e := range timeline {
		if e.User == sample {
			fmt.Printf("  seq=%-8d %-9s %-3s %7.2f\n", e.Seq, e.Product, e.Country, e.Price)
			shown++
			if shown == 5 {
				fmt.Println("  ...")
				break
			}
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
