// Quickstart: semisort pre-hashed records and iterate the groups.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	semisort "repro"
)

func main() {
	// Records carry a 64-bit hashed key and a 64-bit payload — the exact
	// record layout from the paper's experiments. Here the "hash" values
	// are small integers for readability; in production they would come
	// from hashing real keys (see the By/GroupBy API for that).
	records := []semisort.Record{
		{Key: 0xCAFE, Value: 1},
		{Key: 0xBEEF, Value: 2},
		{Key: 0xCAFE, Value: 3},
		{Key: 0xF00D, Value: 4},
		{Key: 0xBEEF, Value: 5},
		{Key: 0xCAFE, Value: 6},
	}

	out, stats, err := semisort.RecordsWithStats(records, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("semisorted (equal keys contiguous, group order unspecified):")
	semisort.Runs(out, func(start, end int) {
		fmt.Printf("  key %#x: %d record(s):", out[start].Key, end-start)
		for _, r := range out[start:end] {
			fmt.Printf(" %d", r.Value)
		}
		fmt.Println()
	})

	fmt.Printf("\nphases: sample+sort=%v buckets=%v scatter=%v localsort=%v pack=%v\n",
		stats.Phases.SampleSort, stats.Phases.Buckets, stats.Phases.Scatter,
		stats.Phases.LocalSort, stats.Phases.Pack)

	// The generic front-end groups arbitrary Go values by any comparable
	// key, hashing (and collision-checking) internally.
	fruit := []string{"fig", "apple", "fig", "banana", "apple", "fig"}
	groups, err := semisort.GroupBy(fruit, func(s string) string { return s }, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngrouped strings:")
	for k, g := range groups {
		fmt.Printf("  %-6s x%d\n", k, len(g))
	}
}
