// Hashjoin: a relational equi-join built on semisorting, the paper's
// database motivation.
//
// "In the relational join operation common in database processing, equal
// values of a field of a relation have to be put together with equal
// values of a field of another." (Section 1)
//
// We join two relations on a shared key by tagging each tuple with its
// source relation, semisorting the concatenation by join key, and then
// emitting the cross product inside every run — the classic sort-merge
// join with the sort replaced by the cheaper semisort.
//
// Run with: go run ./examples/hashjoin [-orders 50000] [-customers 5000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	semisort "repro"
)

type order struct {
	OrderID    int
	CustomerID int
	Amount     int
}

type customer struct {
	CustomerID int
	Region     string
}

// tagged is a tuple of either relation, discriminated by side.
type tagged struct {
	key  int // join key: CustomerID
	side int // 0 = customer (build side), 1 = order (probe side)
	idx  int // index into the source relation
}

type joined struct {
	OrderID int
	Region  string
	Amount  int
}

func main() {
	nOrders := flag.Int("orders", 50000, "rows in the orders relation")
	nCustomers := flag.Int("customers", 5000, "rows in the customers relation")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	regions := []string{"EMEA", "APAC", "AMER"}

	customers := make([]customer, *nCustomers)
	for i := range customers {
		customers[i] = customer{CustomerID: i, Region: regions[rng.Intn(len(regions))]}
	}
	orders := make([]order, *nOrders)
	for i := range orders {
		// Zipf-ish: a few customers place most orders (heavy join keys).
		c := rng.Intn(*nCustomers) * rng.Intn(*nCustomers) / *nCustomers
		orders[i] = order{OrderID: 1000 + i, CustomerID: c, Amount: 1 + rng.Intn(500)}
	}

	t0 := time.Now()

	// Tag and concatenate both relations.
	all := make([]tagged, 0, len(customers)+len(orders))
	for i, c := range customers {
		all = append(all, tagged{key: c.CustomerID, side: 0, idx: i})
	}
	for i, o := range orders {
		all = append(all, tagged{key: o.CustomerID, side: 1, idx: i})
	}

	// Semisort by join key: all tuples of a key, from both sides, become
	// contiguous.
	grouped, err := semisort.By(all, func(t tagged) int { return t.key }, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Emit the join: within each run, pair every order with every customer
	// (CustomerID is unique on the build side, so runs hold <= 1 customer).
	var result []joined
	i := 0
	for i < len(grouped) {
		k := grouped[i].key
		j := i
		var cust *customer
		for j < len(grouped) && grouped[j].key == k {
			if grouped[j].side == 0 {
				cust = &customers[grouped[j].idx]
			}
			j++
		}
		if cust != nil {
			for t := i; t < j; t++ {
				if grouped[t].side == 1 {
					o := orders[grouped[t].idx]
					result = append(result, joined{OrderID: o.OrderID, Region: cust.Region, Amount: o.Amount})
				}
			}
		}
		i = j
	}
	elapsed := time.Since(t0)

	fmt.Printf("joined %d orders x %d customers -> %d rows in %v\n",
		len(orders), len(customers), len(result), elapsed)

	// Aggregate per region as a demo consumer of the join output.
	sums := map[string]int{}
	for _, r := range result {
		sums[r.Region] += r.Amount
	}
	for _, reg := range regions {
		fmt.Printf("  %s: total order volume %d\n", reg, sums[reg])
	}

	// Verify against a nested-loop reference on a sample.
	ref := map[int]string{}
	for _, c := range customers {
		ref[c.CustomerID] = c.Region
	}
	if len(result) != len(orders) {
		log.Fatalf("join produced %d rows, want %d (every order has a customer)", len(result), len(orders))
	}
	for _, r := range result[:min(1000, len(result))] {
		o := orders[r.OrderID-1000]
		if ref[o.CustomerID] != r.Region {
			log.Fatalf("wrong region for order %d", r.OrderID)
		}
	}
	fmt.Println("verified against reference join")
}
